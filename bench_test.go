// Benchmarks regenerating every table and figure of the paper's evaluation
// (one Benchmark per exhibit, backed by the internal/exp harness), plus
// micro-benchmarks of the core primitives and ablations of the design
// choices called out in DESIGN.md.
//
// Wall-clock is hardware-dependent; the custom metrics reported via
// b.ReportMetric (candidates counted, patterns found, auto-n, e_m) are the
// implementation-independent shapes EXPERIMENTS.md compares against the
// paper. Run cmd/experiments for the full printed tables/series.
package permine_test

import (
	"errors"
	"fmt"
	"testing"

	"permine"
	"permine/internal/combinat"
	"permine/internal/core"
	"permine/internal/embound"
	"permine/internal/exp"
	"permine/internal/mine"
	"permine/internal/pil"
)

// benchGap is the paper's default gap requirement [9,12].
var benchGap = permine.Gap{N: 9, M: 12}

// BenchmarkTable2 regenerates the K_r worked example (paper Table 2).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, em, err := exp.RunTable2()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 || em != 2 {
			b.Fatalf("table 2 drifted: %v e_m=%d", rows, em)
		}
	}
}

// BenchmarkFig4a measures MPPm vs MPP worst case across the paper's
// support-threshold sweep (Figure 4(a)); Fig4b's best-case series comes
// from the same harness run.
func BenchmarkFig4a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.RunFig4(exp.Config{})
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(float64(last.WorstCand), "worstCand")
		b.ReportMetric(float64(last.MPPmCand), "mppmCand")
		b.ReportMetric(last.WorstSec/last.MPPmSec, "worst/mppm")
	}
}

// BenchmarkFig4b measures MPPm vs MPP best case at the paper's reference
// threshold ρs = 0.003% (Figure 4(b) midpoint).
func BenchmarkFig4b(b *testing.B) {
	s, err := permine.GenerateGenomeLike(1000, 20050711)
	if err != nil {
		b.Fatal(err)
	}
	worst, err := mine.MPP(s, core.Params{Gap: benchGap, MinSupport: 0.00003})
	if err != nil {
		b.Fatal(err)
	}
	no := worst.Longest()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		best, err := mine.MPP(s, core.Params{Gap: benchGap, MinSupport: 0.00003, MaxLen: no})
		if err != nil {
			b.Fatal(err)
		}
		mppm, err := mine.MPPm(s, core.Params{Gap: benchGap, MinSupport: 0.00003, EmOrder: 8})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(best.Patterns)), "patterns")
		b.ReportMetric(float64(mppm.N), "autoN")
	}
}

// BenchmarkTable3 regenerates the per-level candidate counts (Table 3).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.RunTable3(exp.Config{})
		if err != nil {
			b.Fatal(err)
		}
		var worst, best int64
		for _, r := range rows {
			if r.Worst > 0 {
				worst += r.Worst
			}
			if r.Best > 0 {
				best += r.Best
			}
		}
		b.ReportMetric(float64(worst), "worstCand")
		b.ReportMetric(float64(best), "bestCand")
	}
}

// BenchmarkFig5 sweeps the MPP user estimate n (Figure 5).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.RunFig5(exp.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Seconds/rows[0].Seconds, "t(n=60)/t(n=10)")
	}
}

// BenchmarkFig6 sweeps the gap flexibility W (Figure 6).
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.RunFig6(exp.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Seconds/rows[0].Seconds, "t(W=8)/t(W=4)")
	}
}

// BenchmarkFig7 sweeps the minimum gap N (Figure 7).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.RunFig7(exp.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Seconds/rows[0].Seconds, "t(N=12)/t(N=8)")
	}
}

// BenchmarkFig8 sweeps the subject length L (Figure 8, scalability). Uses
// the paper's m = 10 for this exhibit.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.RunFig8(exp.Config{EmOrder: 10})
		if err != nil {
			b.Fatal(err)
		}
		// Linearity indicator: time ratio vs length ratio at the
		// extremes (1 means perfectly linear).
		r := (rows[len(rows)-1].Seconds / rows[0].Seconds) /
			(float64(rows[len(rows)-1].X) / float64(rows[0].X))
		b.ReportMetric(r, "linearity")
	}
}

// BenchmarkCaseStudy regenerates the §7 genome census (quick
// configuration: one genome per class; run cmd/experiments -case for the
// full seven-genome census).
func BenchmarkCaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunCaseStudy(exp.CaseConfig{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		at, _, multi := exp.Averages(r.Bacterial)
		b.ReportMetric(at, "bactATonly")
		b.ReportMetric(multi, "bactMultiCG")
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the core primitives.

// BenchmarkPILJoin measures one prefix/suffix PIL join at the paper's
// default scale, arena-backed as in the miner's hot path (steady state
// must report 0 allocs/op).
func BenchmarkPILJoin(b *testing.B) {
	s, err := permine.GenerateGenomeLike(1000, 1)
	if err != nil {
		b.Fatal(err)
	}
	threes, err := pil.ScanK(s, benchGap, 3)
	if err != nil {
		b.Fatal(err)
	}
	p1, p2 := threes["AAA"], threes["AAT"]
	if len(p1) == 0 || len(p2) == 0 {
		b.Fatal("seed PILs empty")
	}
	var arena pil.Arena
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		arena.Reset()
		if got, sup := pil.JoinInto(&arena, p1, p2, benchGap); len(got) == 0 || sup == 0 {
			b.Fatal("join vanished")
		}
	}
}

// BenchmarkScanK measures the level-3 seeding scan.
func BenchmarkScanK(b *testing.B) {
	s, err := permine.GenerateGenomeLike(1000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pil.ScanK(s, benchGap, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmOrder8 and BenchmarkEmOrder10 measure the e_m sweep at the
// two orders the paper uses.
func BenchmarkEmOrder8(b *testing.B)  { benchEm(b, 8) }
func BenchmarkEmOrder10(b *testing.B) { benchEm(b, 10) }

func benchEm(b *testing.B, m int) {
	s, err := permine.GenerateGenomeLike(1000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		em, err := embound.Em(s, benchGap, m)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(em), "e_m")
	}
}

// BenchmarkSupport measures the public O(|P|·L) support query.
func BenchmarkSupport(b *testing.B) {
	s, err := permine.GenerateGenomeLike(5000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := permine.Support(s, "AATAATAA", benchGap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNlBoundary measures the recursive Nl evaluation in the
// l1 < l <= l2 boundary region (Appendix recursion).
func BenchmarkNlBoundary(b *testing.B) {
	g := combinat.Gap{N: 2, M: 6}
	for i := 0; i < b.N; i++ {
		c := combinat.MustCounter(200, g)
		for l := c.L1() + 1; l <= c.L2(); l++ {
			if c.Nl(l).Sign() < 0 {
				b.Fatal("negative Nl")
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §6): design choices isolated.

// BenchmarkAblationNoPrune compares the λ-pruned miner with pruning
// disabled (n = l1 makes λ ≈ its weakest useful value; the enumeration
// baseline removes it entirely but only completes a few levels).
func BenchmarkAblationNoPrune(b *testing.B) {
	s, err := permine.GenerateGenomeLike(500, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := mine.Enumerate(s, core.Params{
			Gap: benchGap, MinSupport: 0.00003, CandidateBudget: 1 << 22,
		}); err != nil && !errors.Is(err, core.ErrBudgetExceeded) {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEmOrder sweeps MPPm's m, the accuracy/cost trade of the
// e_m bound: larger m prunes more (smaller auto n) but costs W^m state.
func BenchmarkAblationEmOrder(b *testing.B) {
	s, err := permine.GenerateGenomeLike(1000, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []int{4, 6, 8, 10} {
		b.Run(benchName("m", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := mine.MPPm(s, core.Params{Gap: benchGap, MinSupport: 0.00003, EmOrder: m})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.N), "autoN")
				b.ReportMetric(float64(res.Em), "e_m")
			}
		})
	}
}

// BenchmarkAblationAdaptive compares the Section 6 adaptive refinement
// against a single worst-case run.
func BenchmarkAblationAdaptive(b *testing.B) {
	s, err := permine.GenerateGenomeLike(1000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("adaptive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := mine.Adaptive(s, core.Params{Gap: benchGap, MinSupport: 0.00003, MaxLen: 10})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(res.Rounds)), "rounds")
		}
	})
	b.Run("worstcase", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mine.MPP(s, core.Params{Gap: benchGap, MinSupport: 0.00003}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationScan3 contrasts seeding level 3 by direct scan (the
// paper's choice) against building it from level-1/level-2 joins.
func BenchmarkAblationScan3(b *testing.B) {
	s, err := permine.GenerateGenomeLike(1000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("scan3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pil.ScanK(s, benchGap, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("join123", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			singles := pil.Singles(s)
			alpha := s.Alphabet()
			twos := make(map[string]pil.List)
			for a := 0; a < alpha.Size(); a++ {
				for c := 0; c < alpha.Size(); c++ {
					l := pil.Join(singles[a], singles[c], benchGap)
					if len(l) > 0 {
						twos[string([]byte{alpha.Symbol(a), alpha.Symbol(c)})] = l
					}
				}
			}
			n := 0
			for p1, l1 := range twos {
				for p2, l2 := range twos {
					if p1[1] == p2[0] {
						if len(pil.Join(l1, l2, benchGap)) > 0 {
							n++
						}
					}
				}
			}
			if n == 0 {
				b.Fatal("no level-3 PILs")
			}
		}
	})
}

func benchName(k string, v int) string {
	return fmt.Sprintf("%s=%d", k, v)
}

// ---------------------------------------------------------------------------
// Comparison-model and analysis benchmarks.

// BenchmarkWindowedMine measures the §2 window-count miner at the
// paper's default scale.
func BenchmarkWindowedMine(b *testing.B) {
	s, err := permine.GenerateGenomeLike(1000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := permine.MineWindowed(s, permine.WindowParams{
			Gap: benchGap, Width: 100, MinWindows: 20, MaxLen: 6,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Patterns)), "patterns")
	}
}

// BenchmarkAsyncMine measures the §2 asynchronous-period miner.
func BenchmarkAsyncMine(b *testing.B) {
	s, err := permine.GenerateGenomeLike(5000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chains, err := permine.MineAsync(s, permine.AsyncParams{
			MinPeriod: 9, MaxPeriod: 13, MinRep: 3, MaxDis: 50,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(chains)), "chains")
	}
}

// BenchmarkTandemFind measures the §1 tandem-repeat finder.
func BenchmarkTandemFind(b *testing.B) {
	s, err := permine.GenerateBacterialLike(20000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reps, err := permine.FindTandemRepeats(s, 12, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(reps)), "repeats")
	}
}

// BenchmarkAnnotate measures the IID-null enrichment annotation of a full
// mining result.
func BenchmarkAnnotate(b *testing.B) {
	s, err := permine.GenerateGenomeLike(1000, 1)
	if err != nil {
		b.Fatal(err)
	}
	res, err := permine.MPPm(s, permine.Params{Gap: benchGap, MinSupport: 0.00003, EmOrder: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := permine.Annotate(res, s); err != nil {
			b.Fatal(err)
		}
	}
}
