// Command seqgen generates the deterministic synthetic sequences this
// repository uses in place of the paper's NCBI data, writing FASTA to
// stdout.
//
//	seqgen -kind genome -len 10000 -seed 7 > genome.fa
//	seqgen -kind bacterial -len 200000 | mpp -gapmin 10 -gapmax 12 -support 0.006
//
// Kinds: genome (human-fragment-like), bacterial (AT-rich, §7),
// eukaryote (G-tract, §7), protein (leucine-rich repeat), uniform.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"permine"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "seqgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("seqgen", flag.ContinueOnError)
	var (
		kind   = fs.String("kind", "genome", "generator: genome, bacterial, eukaryote, protein, uniform")
		length = fs.Int("len", 1000, "sequence length")
		seed   = fs.Uint64("seed", 20050711, "generator seed (same seed, same sequence)")
		count  = fs.Int("count", 1, "number of sequences (seed increments per record)")
		width  = fs.Int("width", 70, "FASTA line width")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *count < 1 {
		return fmt.Errorf("count %d must be >= 1", *count)
	}
	for i := 0; i < *count; i++ {
		s, err := generate(*kind, *length, *seed+uint64(i))
		if err != nil {
			return err
		}
		if err := permine.WriteFASTA(stdout, *width, s); err != nil {
			return err
		}
	}
	return nil
}

func generate(kind string, length int, seed uint64) (*permine.Sequence, error) {
	switch strings.ToLower(kind) {
	case "genome":
		return permine.GenerateGenomeLike(length, seed)
	case "bacterial":
		return permine.GenerateBacterialLike(length, seed)
	case "eukaryote":
		return permine.GenerateEukaryoteLike(length, seed)
	case "protein":
		return permine.GenerateProteinRepeat(length, seed)
	case "uniform":
		return permine.GenerateUniform(permine.DNA, fmt.Sprintf("uniform(L=%d,seed=%d)", length, seed), length, seed)
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}
