package main

import (
	"bytes"
	"strings"
	"testing"

	"permine"
)

func TestRunKinds(t *testing.T) {
	for _, kind := range []string{"genome", "bacterial", "eukaryote", "protein", "uniform"} {
		var out bytes.Buffer
		if err := run([]string{"-kind", kind, "-len", "300"}, &out); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		alpha := permine.DNA
		if kind == "protein" {
			alpha = permine.Protein
		}
		seqs, err := permine.ReadFASTA(&out, alpha)
		if err != nil {
			t.Fatalf("%s: output is not valid FASTA: %v", kind, err)
		}
		if len(seqs) != 1 || seqs[0].Len() != 300 {
			t.Errorf("%s: got %d records, len %d", kind, len(seqs), seqs[0].Len())
		}
	}
}

func TestRunCount(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "uniform", "-len", "100", "-count", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	seqs, err := permine.ReadFASTA(&out, permine.DNA)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 {
		t.Fatalf("got %d records", len(seqs))
	}
	if seqs[0].Data() == seqs[1].Data() {
		t.Error("per-record seeds did not vary")
	}
}

func TestRunDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-kind", "genome", "-len", "500", "-seed", "9"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kind", "genome", "-len", "500", "-seed", "9"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different output")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "nope"}, &out); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run([]string{"-count", "0"}, &out); err == nil {
		t.Error("count 0 accepted")
	}
	if err := run([]string{"-len", "0"}, &out); err == nil {
		t.Error("length 0 accepted")
	}
	if strings.Contains(out.String(), ">") && out.Len() > 0 {
		t.Log("partial output on error is acceptable but noted")
	}
}
