package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTable2(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-table", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "Table 2") || !strings.Contains(got, "e_m = 2") {
		t.Errorf("output:\n%s", got)
	}
}

func TestRunQuickFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("quick figures still mine; skipped with -short")
	}
	var out bytes.Buffer
	if err := run([]string{"-fig", "5", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 5") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunNothingSelected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("no selection accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bogus flag accepted")
	}
}

func TestRunPlot(t *testing.T) {
	if testing.Short() {
		t.Skip("plots run a figure sweep; skipped with -short")
	}
	var out bytes.Buffer
	if err := run([]string{"-fig", "5", "-quick", "-plot"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "█") {
		t.Errorf("plot missing bars:\n%s", out.String())
	}
}

// TestRunAllExhibitsTiny drives every exhibit branch on a tiny subject so
// the wiring (including -plot) is exercised end to end.
func TestRunAllExhibitsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every exhibit; skipped with -short")
	}
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-table", "3", "-L", "400"},
		{"-fig", "4", "-quick", "-L", "400", "-plot"},
		{"-fig", "6", "-quick", "-L", "300", "-plot"},
		{"-fig", "7", "-quick", "-L", "300", "-plot"},
		{"-fig", "8", "-quick", "-plot"},
	} {
		if err := run(args, &out); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
	got := out.String()
	for _, want := range []string{"Table 3", "Figure 4", "Figure 6", "Figure 7", "Figure 8", "legend"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
