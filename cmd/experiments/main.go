// Command experiments regenerates the tables and figures of the paper's
// evaluation (Section 6) and case study (Section 7) and prints the same
// rows/series the paper reports.
//
//	experiments -all            # everything (several minutes)
//	experiments -table 2        # the K_r worked example
//	experiments -fig 4 -quick   # shortened threshold sweep
//	experiments -case           # the §7 genome census
//
// Output shapes are compared against the paper in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"permine/internal/exp"
	"permine/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		all      = fs.Bool("all", false, "run every exhibit")
		table    = fs.Int("table", 0, "run one table (2 or 3)")
		fig      = fs.Int("fig", 0, "run one figure (4, 5, 6, 7 or 8)")
		caseFlag = fs.Bool("case", false, "run the §7 case study census")
		verify   = fs.Bool("verify", false, "re-run the exhibits and check every EXPERIMENTS.md shape claim")
		quick    = fs.Bool("quick", false, "shortened sweeps")
		plot     = fs.Bool("plot", false, "draw ASCII charts for the figures")
		length   = fs.Int("L", 0, "override the subject sequence length (0 = paper default)")
		seed     = fs.Uint64("seed", 0, "override the generator seed (0 = default)")
		workers  = fs.Int("workers", 0, "worker goroutines (0 = sequential)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := exp.Config{Quick: *quick, Seed: *seed, Workers: *workers, L: *length}
	ccfg := exp.CaseConfig{Quick: *quick, Seed: *seed, Workers: *workers}

	ran := false
	sep := func(name string) {
		fmt.Fprintf(w, "\n========== %s ==========\n", name)
	}
	runOne := func(name string, f func() error) error {
		ran = true
		sep(name)
		start := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(w, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if *all || *table == 2 {
		if err := runOne("Table 2", func() error {
			rows, em, err := exp.RunTable2()
			if err != nil {
				return err
			}
			return exp.FprintTable2(w, rows, em)
		}); err != nil {
			return err
		}
	}
	if *all || *table == 3 {
		if err := runOne("Table 3", func() error {
			rows, err := exp.RunTable3(cfg)
			if err != nil {
				return err
			}
			return exp.FprintTable3(w, cfg, rows)
		}); err != nil {
			return err
		}
	}
	if *all || *fig == 4 {
		if err := runOne("Figure 4", func() error {
			rows, err := exp.RunFig4(cfg)
			if err != nil {
				return err
			}
			if err := exp.FprintFig4(w, cfg, rows); err != nil {
				return err
			}
			if *plot {
				xs := make([]string, len(rows))
				worst := report.Series{Name: "MPP(worst)"}
				mppm := report.Series{Name: "MPPm"}
				best := report.Series{Name: "MPP(best)"}
				for i, r := range rows {
					xs[i] = fmt.Sprintf("%.4f", r.RhoPct)
					worst.Values = append(worst.Values, r.WorstSec)
					mppm.Values = append(mppm.Values, r.MPPmSec)
					best.Values = append(best.Values, r.BestSec)
				}
				return report.LinePlot(w, "time (s) vs ρs (%)", xs, []report.Series{worst, mppm, best}, 14)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if *all || *fig == 5 {
		if err := runOne("Figure 5", func() error {
			rows, err := exp.RunFig5(cfg)
			if err != nil {
				return err
			}
			if err := exp.FprintFig5(w, cfg, rows); err != nil {
				return err
			}
			if *plot {
				bars := make([]report.Bar, len(rows))
				for i, r := range rows {
					bars[i] = report.Bar{Label: fmt.Sprintf("n=%d", r.N), Value: r.Seconds}
				}
				return report.BarChart(w, "MPP time vs user estimate n", "s", bars, 44)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if *all || *fig == 6 {
		if err := runOne("Figure 6", func() error {
			rows, err := exp.RunFig6(cfg)
			if err != nil {
				return err
			}
			if err := exp.FprintSweep(w, "Figure 6: MPPm under different gap flexibility W (N=9, m=8, ρs=0.003%)", "W", rows); err != nil {
				return err
			}
			return plotSweep(w, *plot, "MPPm time vs W", "W", rows)
		}); err != nil {
			return err
		}
	}
	if *all || *fig == 7 {
		if err := runOne("Figure 7", func() error {
			rows, err := exp.RunFig7(cfg)
			if err != nil {
				return err
			}
			if err := exp.FprintSweep(w, "Figure 7: MPPm under different minimum gap N (W=4, m=8, ρs=0.003%)", "N", rows); err != nil {
				return err
			}
			return plotSweep(w, *plot, "MPPm time vs N", "N", rows)
		}); err != nil {
			return err
		}
	}
	if *all || *fig == 8 {
		if err := runOne("Figure 8", func() error {
			c8 := cfg
			c8.EmOrder = 10 // the paper's m for this exhibit
			rows, err := exp.RunFig8(c8)
			if err != nil {
				return err
			}
			if err := exp.FprintSweep(w, "Figure 8: MPPm scalability in sequence length L (gap [9,12], m=10, ρs=0.003%)", "L", rows); err != nil {
				return err
			}
			return plotSweep(w, *plot, "MPPm time vs L", "L", rows)
		}); err != nil {
			return err
		}
	}
	if *all || *caseFlag {
		if err := runOne("Case study (§7)", func() error {
			r, err := exp.RunCaseStudy(ccfg)
			if err != nil {
				return err
			}
			return exp.FprintCaseStudy(w, ccfg, r)
		}); err != nil {
			return err
		}
	}

	if *verify {
		if err := runOne("Verify shape claims", func() error {
			claims, err := exp.Verify(cfg)
			if err != nil {
				return err
			}
			return exp.FprintClaims(w, claims)
		}); err != nil {
			return err
		}
	}

	if !ran {
		fs.Usage()
		return fmt.Errorf("nothing selected: use -all, -table N, -fig N, -case or -verify")
	}
	return nil
}

// plotSweep renders one single-series sweep as a bar chart when enabled.
func plotSweep(w io.Writer, enabled bool, title, xLabel string, rows []exp.SweepRow) error {
	if !enabled {
		return nil
	}
	bars := make([]report.Bar, len(rows))
	for i, r := range rows {
		bars[i] = report.Bar{Label: fmt.Sprintf("%s=%d", xLabel, r.X), Value: r.Seconds}
	}
	return report.BarChart(w, title, "s", bars, 44)
}
