// Command seqstat reports descriptive statistics of a sequence: base
// composition, top k-mers, the paper's §1 base-pair oscillation profile,
// tandem repeats (§1) and asynchronous periodic chains (§2). It is the
// exploratory companion to the mpp miner: run it first to see whether a
// sequence carries periodic structure, then mine with mpp.
//
//	seqgen -kind genome -len 5000 | seqstat
//	seqstat -in genome.fa -pair AA -maxp 20 -tandem 8 -async 9:13
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"permine"
	"permine/internal/exp"
	"permine/internal/seq"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "seqstat:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("seqstat", flag.ContinueOnError)
	var (
		in      = fs.String("in", "", "FASTA input file (default: stdin)")
		demo    = fs.Bool("demo", false, "analyse a generated genome-like sequence")
		demoLen = fs.Int("demolen", 2000, "length of the -demo sequence")
		seed    = fs.Uint64("seed", 20050711, "seed for -demo")
		pair    = fs.String("pair", "AA", "ordered base pair for the oscillation profile (two symbols)")
		maxP    = fs.Int("maxp", 20, "largest distance for the oscillation profile")
		kmer    = fs.Int("kmer", 4, "k for the top-k-mer table (0 disables)")
		topN    = fs.Int("top", 8, "entries in the top-k-mer table")
		tandemP = fs.Int("tandem", 6, "max tandem-repeat period (0 disables)")
		asyncR  = fs.String("async", "9:13", "asynchronous-period range min:max (empty disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var subjects []*permine.Sequence
	switch {
	case *demo:
		s, err := permine.GenerateGenomeLike(*demoLen, *seed)
		if err != nil {
			return err
		}
		subjects = []*permine.Sequence{s}
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		subjects, err = permine.ReadFASTA(f, permine.DNA)
		if err != nil {
			return err
		}
	default:
		var err error
		subjects, err = permine.ReadFASTA(stdin, permine.DNA)
		if err != nil {
			return fmt.Errorf("reading stdin (use -in FILE or -demo): %w", err)
		}
	}
	if len(*pair) != 2 {
		return fmt.Errorf("-pair must name exactly two symbols, got %q", *pair)
	}

	for _, s := range subjects {
		if err := analyse(stdout, s, (*pair)[0], (*pair)[1], *maxP, *kmer, *topN, *tandemP, *asyncR); err != nil {
			return err
		}
	}
	return nil
}

func analyse(w io.Writer, s *permine.Sequence, x, y byte, maxP, kmer, topN, tandemP int, asyncR string) error {
	fmt.Fprintf(w, "== %v\n", s)
	comp := seq.Compose(s)
	fmt.Fprintf(w, "composition: %s (GC %.3f)\n", comp, comp.GC())

	if kmer > 0 {
		fmt.Fprintf(w, "\ntop %d-mers:\n", kmer)
		for _, kc := range seq.TopKmers(s, kmer, topN) {
			fmt.Fprintf(w, "  %-10s %d\n", kc.Kmer, kc.Count)
		}
	}

	if maxP >= 2 {
		rows, err := exp.OscillationProfile(s, x, y, maxP)
		if err != nil {
			return err
		}
		fmt.Fprintln(w)
		if err := exp.FprintOscillation(w, x, y, rows); err != nil {
			return err
		}
	}

	if tandemP > 0 {
		reps, err := permine.FindTandemRepeats(s, tandemP, 3)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\ntandem repeats (period <= %d, >= 3 copies): %d found\n", tandemP, len(reps))
		for _, r := range permine.LongestTandemRepeats(reps, 5) {
			fmt.Fprintf(w, "  %v\n", r)
		}
	}

	if asyncR != "" {
		lo, hi, err := parseRange(asyncR)
		if err != nil {
			return err
		}
		chains, err := permine.MineAsync(s, permine.AsyncParams{
			MinPeriod: lo, MaxPeriod: hi, MinRep: 3, MaxDis: 50,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nasynchronous periodic chains (periods %d..%d):\n", lo, hi)
		for i, c := range chains {
			if i >= 5 {
				fmt.Fprintf(w, "  ... and %d more\n", len(chains)-5)
				break
			}
			fmt.Fprintf(w, "  %v\n", c)
		}
	}
	fmt.Fprintln(w)
	return nil
}

func parseRange(s string) (lo, hi int, err error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("range %q must be min:max", s)
	}
	lo, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("range %q: %w", s, err)
	}
	hi, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("range %q: %w", s, err)
	}
	return lo, hi, nil
}
