package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDemo(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-demo", "-demolen", "2500"}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"composition:", "top 4-mers", "oscillation", "peak at p=1", "tandem repeats", "asynchronous"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunStdin(t *testing.T) {
	var out bytes.Buffer
	fasta := ">x\n" + strings.Repeat("ACGT", 30) + "\n"
	if err := run([]string{"-maxp", "8", "-tandem", "4", "-async", "2:4"}, strings.NewReader(fasta), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "GC 0.500") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunDisabledSections(t *testing.T) {
	var out bytes.Buffer
	fasta := ">x\nACGTACGTACGTACGTACGT\n"
	if err := run([]string{"-kmer", "0", "-tandem", "0", "-async", "", "-maxp", "5"}, strings.NewReader(fasta), &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "tandem repeats") {
		t.Error("disabled tandem section printed")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-demo", "-pair", "AAA"}, strings.NewReader(""), &out); err == nil {
		t.Error("bad pair accepted")
	}
	if err := run([]string{"-demo", "-async", "bogus"}, strings.NewReader(""), &out); err == nil {
		t.Error("bad async range accepted")
	}
	if err := run([]string{"-demo", "-async", "a:b"}, strings.NewReader(""), &out); err == nil {
		t.Error("non-numeric range accepted")
	}
	if err := run([]string{"-in", "/does/not/exist"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{}, strings.NewReader("garbage"), &out); err == nil {
		t.Error("garbage stdin accepted")
	}
	if err := run([]string{"-demo", "-pair", "AX"}, strings.NewReader(""), &out); err == nil {
		t.Error("non-DNA pair accepted")
	}
}
