// Command mpp mines periodic patterns with a gap requirement from a
// sequence, using the algorithms of Zhang et al. (SIGMOD 2005).
//
// Input is FASTA on stdin or via -in; without input, -demo mines a
// generated genome-like sequence. Examples:
//
//	mpp -in genome.fa -gapmin 9 -gapmax 12 -support 0.003 -algo mppm
//	seqgen -kind genome -len 5000 | mpp -gapmin 9 -gapmax 12 -support 0.003
//	mpp -demo -algo adaptive -v
//	mpp -demo -topk 5              # only the 5 best patterns by ratio
//	mpp -demo -motif ACG           # only patterns containing ACG
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"permine"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mpp:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("mpp", flag.ContinueOnError)
	var (
		in       = fs.String("in", "", "FASTA input file (default: stdin)")
		demo     = fs.Bool("demo", false, "mine a generated genome-like sequence instead of reading input")
		demoLen  = fs.Int("demolen", 1000, "length of the -demo sequence")
		seed     = fs.Uint64("seed", 20050711, "seed for -demo")
		alphabet = fs.String("alphabet", "dna", "alphabet: dna, protein, or a custom symbol string")
		gapMin   = fs.Int("gapmin", 9, "minimum gap N between successive pattern characters")
		gapMax   = fs.Int("gapmax", 12, "maximum gap M between successive pattern characters")
		support  = fs.Float64("support", 0.003, "support threshold ρs in percent (0.003 means 0.003%)")
		algo     = fs.String("algo", "mppm", "algorithm: mpp, mppm, adaptive, enumerate")
		maxLen   = fs.Int("n", 0, "MPP estimate of the longest frequent pattern length (0 = worst case l1)")
		emOrder  = fs.Int("m", 8, "MPPm e_m order")
		workers  = fs.Int("workers", 1, "worker goroutines for candidate counting")
		join     = fs.String("join", "auto", "PIL join strategy: auto, twoptr, cum, bitap (results are identical; forced values are for debugging and benchmarks)")
		topK     = fs.Int("topk", 0, "mine only the K best patterns by support ratio (0 = all)")
		motif    = fs.String("motif", "", "targeted mining: keep only patterns containing this character string")
		verbose  = fs.Bool("v", false, "print per-level metrics")
		maxPrint = fs.Int("top", 40, "print at most this many patterns (0 = all)")
		query    = fs.String("pattern", "", "query mode: report support and first occurrences of this pattern (paper notation, e.g. 'A..Tg(9,12)C') instead of mining")
		asJSON   = fs.Bool("json", false, "emit results as JSON (one object per subject sequence)")
		lvlOut   = fs.String("level-metrics", "", "write per-level metrics (the paper's Table 3 data) as JSON to this file ('-' = stdout)")
		version  = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintf(stdout, "mpp %s\n", permine.Version)
		return nil
	}

	alpha, err := pickAlphabet(*alphabet)
	if err != nil {
		return err
	}

	var subjects []*permine.Sequence
	switch {
	case *demo:
		s, err := permine.GenerateGenomeLike(*demoLen, *seed)
		if err != nil {
			return err
		}
		subjects = []*permine.Sequence{s}
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		subjects, err = permine.ReadFASTA(f, alpha)
		if err != nil {
			return err
		}
	default:
		subjects, err = permine.ReadFASTA(stdin, alpha)
		if err != nil {
			return fmt.Errorf("reading stdin (use -in FILE or -demo): %w", err)
		}
	}

	joinStrat, err := permine.ParseJoinStrategy(*join)
	if err != nil {
		return err
	}
	params := permine.Params{
		Gap:        permine.Gap{N: *gapMin, M: *gapMax},
		MinSupport: *support / 100,
		MaxLen:     *maxLen,
		EmOrder:    *emOrder,
		Workers:    *workers,
		TopK:       *topK,
		Motif:      *motif,
		Join:       joinStrat,
	}

	if *query != "" {
		p, err := permine.ParsePattern(*query, params.Gap)
		if err != nil {
			return err
		}
		for _, s := range subjects {
			sup, err := permine.SupportOf(s, p)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%s on %s (L=%d): sup = %d\n", p, s.Name(), s.Len(), sup)
			occ, err := permine.Occurrences(s, p, 5)
			if err != nil {
				return err
			}
			for _, o := range occ {
				fmt.Fprintf(stdout, "  at %v\n", o)
			}
			if int64(len(occ)) < sup {
				fmt.Fprintf(stdout, "  ... and %d more occurrences\n", sup-int64(len(occ)))
			}
		}
		return nil
	}

	// Ctrl-C cancels mining cooperatively at the next level or candidate
	// batch instead of killing the process mid-run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var levelDumps []levelDump
	for _, s := range subjects {
		res, err := mineOne(ctx, s, *algo, params)
		if errors.Is(err, permine.ErrBudgetExceeded) {
			// The enumeration baseline is exponential by design; a
			// truncated run still reports its completed levels.
			fmt.Fprintln(stdout, "note: enumeration candidate budget exhausted; results below cover completed levels only")
		} else if err != nil {
			return err
		}
		if *lvlOut != "" {
			levelDumps = append(levelDumps, levelDump{
				Sequence:    res.SeqName,
				SequenceLen: res.SeqLen,
				Algorithm:   res.Algorithm.String(),
				GapMin:      res.Params.Gap.N,
				GapMax:      res.Params.Gap.M,
				MinSupport:  res.Params.MinSupport,
				N:           res.N,
				Levels:      res.Levels,
			})
		}
		if *asJSON {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				return err
			}
			continue
		}
		fmt.Fprintln(stdout, res.Summary())
		if *verbose {
			fmt.Fprintf(stdout, "%-6s %-12s %-10s %-10s %-9s %-9s %-9s %-12s\n",
				"level", "candidates", "frequent", "kept", "pruned", "zerosup", "lambda", "elapsed")
			for _, lv := range res.Levels {
				fmt.Fprintf(stdout, "%-6d %-12d %-10d %-10d %-9d %-9d %-9.4f %-12v\n",
					lv.Level, lv.Candidates, lv.Frequent, lv.Kept, lv.PrunedByLambda,
					lv.ZeroSupport, lv.Lambda, lv.Elapsed.Round(time.Microsecond))
			}
		}
		limit := *maxPrint
		if limit <= 0 || limit > len(res.Patterns) {
			limit = len(res.Patterns)
		}
		// Longest first: those are the interesting ones.
		for i := len(res.Patterns) - 1; i >= len(res.Patterns)-limit; i-- {
			p := res.Patterns[i]
			fmt.Fprintf(stdout, "  %-20s |P|=%-3d sup=%-10d ratio=%.4g%%\n",
				p.Chars, p.Len(), p.Support, p.Ratio*100)
		}
		if limit < len(res.Patterns) {
			fmt.Fprintf(stdout, "  ... and %d more (raise -top)\n", len(res.Patterns)-limit)
		}
	}
	if *lvlOut != "" {
		if err := writeLevelMetrics(*lvlOut, stdout, levelDumps); err != nil {
			return fmt.Errorf("writing level metrics: %w", err)
		}
	}
	return nil
}

// levelDump is one subject's per-level metrics for -level-metrics: the
// run identity plus the raw LevelMetrics rows (the paper's Table 3).
type levelDump struct {
	Sequence    string                 `json:"sequence"`
	SequenceLen int                    `json:"sequence_len"`
	Algorithm   string                 `json:"algorithm"`
	GapMin      int                    `json:"gap_min"`
	GapMax      int                    `json:"gap_max"`
	MinSupport  float64                `json:"min_support"`
	N           int                    `json:"n"`
	Levels      []permine.LevelMetrics `json:"levels"`
}

// writeLevelMetrics dumps the collected per-level metrics as indented
// JSON to path ("-" writes to stdout).
func writeLevelMetrics(path string, stdout io.Writer, dumps []levelDump) error {
	w := stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dumps)
}

func mineOne(ctx context.Context, s *permine.Sequence, algo string, p permine.Params) (*permine.Result, error) {
	a, err := permine.ParseAlgorithm(strings.ToLower(algo))
	if err != nil {
		return nil, err
	}
	return permine.Mine(ctx, a, s, p)
}

func pickAlphabet(name string) (*permine.Alphabet, error) {
	switch strings.ToLower(name) {
	case "dna":
		return permine.DNA, nil
	case "protein":
		return permine.Protein, nil
	default:
		return permine.NewAlphabet("custom", name)
	}
}
