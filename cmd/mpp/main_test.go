package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDemo(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-demo", "-demolen", "400", "-support", "0.01", "-top", "3", "-v"}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"MPPm", "frequent patterns", "level", "sup="} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunStdinFASTA(t *testing.T) {
	fasta := ">tiny\nACGTACGTACGTACGTACGTACGTACGTACGT\n"
	var out bytes.Buffer
	err := run([]string{"-gapmin", "1", "-gapmax", "2", "-support", "0.0001", "-algo", "mpp"},
		strings.NewReader(fasta), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "MPP on tiny") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunInputFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "in.fa")
	if err := os.WriteFile(path, []byte(">f\nACGTACGTACGTACGT\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-in", path, "-gapmin", "0", "-gapmax", "1", "-support", "0.01"},
		strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "MPPm on f") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	for _, algo := range []string{"mpp", "mppm", "adaptive", "enumerate"} {
		var out bytes.Buffer
		err := run([]string{"-demo", "-demolen", "300", "-support", "0.05", "-algo", algo, "-top", "1"},
			strings.NewReader(""), &out)
		if err != nil {
			t.Errorf("%s: %v", algo, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-demo", "-algo", "nope"}, strings.NewReader(""), &out); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-demo", "-gapmin", "5", "-gapmax", "2"}, strings.NewReader(""), &out); err == nil {
		t.Error("bad gap accepted")
	}
	if err := run([]string{"-in", "/does/not/exist"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{}, strings.NewReader("not fasta"), &out); err == nil {
		t.Error("garbage stdin accepted")
	}
	if err := run([]string{"-demo", "-alphabet", "X"}, strings.NewReader(""), &out); err == nil {
		t.Error("bad alphabet accepted")
	}
}

func TestPickAlphabet(t *testing.T) {
	a, err := pickAlphabet("protein")
	if err != nil || a.Size() != 20 {
		t.Errorf("protein alphabet: %v %v", a, err)
	}
	c, err := pickAlphabet("xyz")
	if err != nil || c.Size() != 3 {
		t.Errorf("custom alphabet: %v %v", c, err)
	}
}

func TestRunQueryMode(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-demo", "-demolen", "200", "-pattern", "A..T"}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sup = ") {
		t.Errorf("query output: %s", out.String())
	}
	if err := run([]string{"-demo", "-pattern", "A..(bad"}, strings.NewReader(""), &out); err == nil {
		t.Error("bad query pattern accepted")
	}
}

func TestRunJSON(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-demo", "-demolen", "200", "-support", "0.05", "-json"}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Algorithm int
		SeqLen    int
		Patterns  []struct {
			Chars   string
			Support int64
		}
	}
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if decoded.SeqLen != 200 || len(decoded.Patterns) == 0 {
		t.Errorf("decoded = %+v", decoded)
	}
}

func TestRunLevelMetricsDump(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "levels.json")
	var out bytes.Buffer
	err := run([]string{"-demo", "-demolen", "400", "-support", "0.01", "-algo", "mpp",
		"-level-metrics", path}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dumps []levelDump
	if err := json.Unmarshal(raw, &dumps); err != nil {
		t.Fatalf("decoding level metrics dump: %v", err)
	}
	if len(dumps) != 1 {
		t.Fatalf("dump holds %d subjects, want 1", len(dumps))
	}
	d := dumps[0]
	if d.Algorithm != "MPP" || d.SequenceLen != 400 || len(d.Levels) == 0 {
		t.Fatalf("dump = %+v", d)
	}
	for _, lv := range d.Levels {
		if lv.ZeroSupport+lv.PrunedByLambda+lv.Kept != lv.Candidates {
			t.Errorf("level %d: candidate accounting broken in dump: %+v", lv.Level, lv)
		}
	}
}

func TestRunLevelMetricsToStdout(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-demo", "-demolen", "300", "-support", "0.05",
		"-level-metrics", "-", "-top", "0"}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"levels"`) {
		t.Errorf("stdout dump missing levels array:\n%s", out.String())
	}
}
