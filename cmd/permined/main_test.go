package main

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"permine"
)

func TestVersionFlag(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	want := "permined " + permine.Version + "\n"
	if out.String() != want {
		t.Errorf("output = %q, want %q", out.String(), want)
	}
}

func TestBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-no-such-flag"}, &out); err == nil {
		t.Error("expected a flag parse error")
	}
}

// lineWriter signals once a full line has been written.
type lineWriter struct {
	mu    sync.Mutex
	buf   strings.Builder
	ready chan struct{}
	once  sync.Once
}

func (w *lineWriter) Write(b []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, err := w.buf.WriteString(string(b))
	if strings.Contains(w.buf.String(), "\n") {
		w.once.Do(func() { close(w.ready) })
	}
	return n, err
}

func (w *lineWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestServeSmoke boots the daemon on an ephemeral port, hits /healthz, and
// shuts it down through context cancellation (the signal path).
func TestServeSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	out := &lineWriter{ready: make(chan struct{})}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain-timeout", "5s"}, out)
	}()

	select {
	case <-out.ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never announced its address")
	}
	line := strings.TrimSpace(out.String())
	addr := line[strings.LastIndex(line, " ")+1:]

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz on %q: %v", addr, err)
	}
	defer resp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || health["version"] != permine.Version {
		t.Errorf("healthz = %v, want ok + %s", health, permine.Version)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not stop after context cancellation")
	}
}
