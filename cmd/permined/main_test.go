package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"permine"
)

func TestVersionFlag(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	want := "permined " + permine.Version + "\n"
	if out.String() != want {
		t.Errorf("output = %q, want %q", out.String(), want)
	}
}

func TestBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-no-such-flag"}, &out); err == nil {
		t.Error("expected a flag parse error")
	}
}

// lineWriter signals once a full line has been written.
type lineWriter struct {
	mu    sync.Mutex
	buf   strings.Builder
	ready chan struct{}
	once  sync.Once
}

func (w *lineWriter) Write(b []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, err := w.buf.WriteString(string(b))
	if strings.Contains(w.buf.String(), "\n") {
		w.once.Do(func() { close(w.ready) })
	}
	return n, err
}

func (w *lineWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestServeSmoke boots the daemon on an ephemeral port, hits /healthz, and
// shuts it down through context cancellation (the signal path).
func TestServeSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	out := &lineWriter{ready: make(chan struct{})}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain-timeout", "5s"}, out)
	}()

	select {
	case <-out.ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never announced its address")
	}
	line := strings.TrimSpace(out.String())
	addr := line[strings.LastIndex(line, " ")+1:]

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz on %q: %v", addr, err)
	}
	defer resp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || health["version"] != permine.Version {
		t.Errorf("healthz = %v, want ok + %s", health, permine.Version)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not stop after context cancellation")
	}
}

// startPermined launches the given binary and returns the process plus the
// address it announced on stdout.
func startPermined(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	out := &lineWriter{ready: make(chan struct{})}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = out
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-out.ready:
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon never announced its address")
	}
	line := strings.TrimSpace(out.String())
	return cmd, line[strings.LastIndex(line, " ")+1:]
}

// TestRestartRecovery is the crash-recovery proof at the process level: a
// permined binary is SIGKILLed right after accepting a job, restarted on
// the same data dir, and must drive the recovered job to done.
func TestRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real binary")
	}
	bin := filepath.Join(t.TempDir(), "permined")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := t.TempDir()
	args := []string{"-addr", "127.0.0.1:0", "-workers", "1",
		"-data-dir", dataDir, "-retry-backoff", "50ms", "-drain-timeout", "5s"}

	cmd1, addr := startPermined(t, bin, args...)
	// A sequence long enough that the job is very likely still in flight
	// when the process dies (recovery is correct either way: terminal
	// replays, interrupted re-runs).
	var sb strings.Builder
	state := uint64(7)
	for i := 0; i < 40000; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		sb.WriteByte("ACGT"[state>>62])
	}
	body := `{"algorithm":"mppm","params":{"gap_min":2,"gap_max":4,"min_support":0.0005,"max_len":6},` +
		`"sequence":{"alphabet":"dna","name":"crashme","data":"` + sb.String() + `"}}`
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		cmd1.Process.Kill()
		t.Fatal(err)
	}
	var submitted struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&submitted)
	resp.Body.Close()
	if err != nil || submitted.ID == "" {
		cmd1.Process.Kill()
		t.Fatalf("submit decode: %v (id %q)", err, submitted.ID)
	}

	// SIGKILL: no drain, no journal finalisation — a genuine crash.
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait()

	cmd2, addr2 := startPermined(t, bin, args...)
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()

	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s not terminal after restart", submitted.ID)
		}
		resp, err := http.Get("http://" + addr2 + "/v1/jobs/" + submitted.ID)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("GET recovered job: status %d", resp.StatusCode)
		}
		var view struct {
			State  string          `json:"state"`
			Error  string          `json:"error"`
			Result json.RawMessage `json:"result"`
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch view.State {
		case "done":
			if len(view.Result) == 0 {
				t.Fatal("recovered job done without a result")
			}
			return
		case "failed", "cancelled":
			t.Fatalf("recovered job landed in %s (%s)", view.State, view.Error)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
