package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"permine"
)

func TestVersionFlag(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	want := "permined " + permine.Version + "\n"
	if out.String() != want {
		t.Errorf("output = %q, want %q", out.String(), want)
	}
}

func TestBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-no-such-flag"}, &out); err == nil {
		t.Error("expected a flag parse error")
	}
}

// lineWriter signals once a full line has been written.
type lineWriter struct {
	mu    sync.Mutex
	buf   strings.Builder
	ready chan struct{}
	once  sync.Once
}

func (w *lineWriter) Write(b []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, err := w.buf.WriteString(string(b))
	if strings.Contains(w.buf.String(), "\n") {
		w.once.Do(func() { close(w.ready) })
	}
	return n, err
}

func (w *lineWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestServeSmoke boots the daemon on an ephemeral port, hits /healthz, and
// shuts it down through context cancellation (the signal path).
func TestServeSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	out := &lineWriter{ready: make(chan struct{})}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain-timeout", "5s"}, out)
	}()

	select {
	case <-out.ready:
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never announced its address")
	}
	line := strings.TrimSpace(out.String())
	addr := line[strings.LastIndex(line, " ")+1:]

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz on %q: %v", addr, err)
	}
	defer resp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || health["version"] != permine.Version {
		t.Errorf("healthz = %v, want ok + %s", health, permine.Version)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not stop after context cancellation")
	}
}

// startPermined launches the given binary and returns the process plus the
// address it announced on stdout.
func startPermined(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	out := &lineWriter{ready: make(chan struct{})}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = out
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-out.ready:
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon never announced its address")
	}
	line := strings.TrimSpace(out.String())
	return cmd, line[strings.LastIndex(line, " ")+1:]
}

// TestRestartRecovery is the crash-recovery proof at the process level: a
// permined binary is SIGKILLed right after accepting a job, restarted on
// the same data dir, and must drive the recovered job to done.
func TestRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real binary")
	}
	bin := filepath.Join(t.TempDir(), "permined")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := t.TempDir()
	args := []string{"-addr", "127.0.0.1:0", "-workers", "1",
		"-data-dir", dataDir, "-retry-backoff", "50ms", "-drain-timeout", "5s"}

	cmd1, addr := startPermined(t, bin, args...)
	// A sequence long enough that the job is very likely still in flight
	// when the process dies (recovery is correct either way: terminal
	// replays, interrupted re-runs).
	var sb strings.Builder
	state := uint64(7)
	for i := 0; i < 40000; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		sb.WriteByte("ACGT"[state>>62])
	}
	body := `{"algorithm":"mppm","params":{"gap_min":2,"gap_max":4,"min_support":0.0005,"max_len":6},` +
		`"sequence":{"alphabet":"dna","name":"crashme","data":"` + sb.String() + `"}}`
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		cmd1.Process.Kill()
		t.Fatal(err)
	}
	var submitted struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&submitted)
	resp.Body.Close()
	if err != nil || submitted.ID == "" {
		cmd1.Process.Kill()
		t.Fatalf("submit decode: %v (id %q)", err, submitted.ID)
	}

	// SIGKILL: no drain, no journal finalisation — a genuine crash.
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait()

	cmd2, addr2 := startPermined(t, bin, args...)
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()

	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s not terminal after restart", submitted.ID)
		}
		resp, err := http.Get("http://" + addr2 + "/v1/jobs/" + submitted.ID)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("GET recovered job: status %d", resp.StatusCode)
		}
		var view struct {
			State  string          `json:"state"`
			Error  string          `json:"error"`
			Result json.RawMessage `json:"result"`
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch view.State {
		case "done":
			if len(view.Result) == 0 {
				t.Fatal("recovered job done without a result")
			}
			return
		case "failed", "cancelled":
			t.Fatalf("recovered job landed in %s (%s)", view.State, view.Error)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestQueryJobRestartRecovery proves query jobs are as durable as plain
// ones: a top-K + targeted job is journaled with its query params (WAL
// kind "query"), the daemon is SIGKILLed mid-run, and the restarted
// process must re-execute the job and honor both query fields — the
// round-trip through the journal must lose neither.
func TestQueryJobRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real binary")
	}
	bin := filepath.Join(t.TempDir(), "permined")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := t.TempDir()
	args := []string{"-addr", "127.0.0.1:0", "-workers", "1",
		"-data-dir", dataDir, "-retry-backoff", "50ms", "-drain-timeout", "5s"}

	cmd1, addr := startPermined(t, bin, args...)
	var sb strings.Builder
	state := uint64(13)
	for i := 0; i < 40000; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		sb.WriteByte("ACGT"[state>>62])
	}
	body := `{"algorithm":"mppm","params":{"gap_min":2,"gap_max":4,"min_support":0.0005,"max_len":6,` +
		`"top_k":3,"motif":"AC"},` +
		`"sequence":{"alphabet":"dna","name":"crashquery","data":"` + sb.String() + `"}}`
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		cmd1.Process.Kill()
		t.Fatal(err)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&submitted)
	resp.Body.Close()
	if err != nil || submitted.ID == "" {
		cmd1.Process.Kill()
		t.Fatalf("submit decode: %v (id %q)", err, submitted.ID)
	}

	if err := cmd1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait()

	cmd2, addr2 := startPermined(t, bin, args...)
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()

	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("query job %s not terminal after restart", submitted.ID)
		}
		resp, err := http.Get("http://" + addr2 + "/v1/jobs/" + submitted.ID)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("GET recovered query job: status %d", resp.StatusCode)
		}
		var view struct {
			State  string `json:"state"`
			Error  string `json:"error"`
			Result *struct {
				Params struct {
					TopK  int    `json:"TopK"`
					Motif string `json:"Motif"`
				} `json:"Params"`
				Patterns []struct {
					Chars string `json:"Chars"`
				} `json:"Patterns"`
			} `json:"result"`
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch view.State {
		case "done":
			if view.Result == nil {
				t.Fatal("recovered query job done without a result")
			}
			if view.Result.Params.TopK != 3 || view.Result.Params.Motif != "AC" {
				t.Fatalf("query params lost across restart: top_k=%d motif=%q, want 3/AC",
					view.Result.Params.TopK, view.Result.Params.Motif)
			}
			if len(view.Result.Patterns) > 3 {
				t.Fatalf("top-3 query returned %d patterns", len(view.Result.Patterns))
			}
			for _, p := range view.Result.Patterns {
				if !strings.Contains(p.Chars, "AC") {
					t.Errorf("recovered targeted result has pattern %q without motif AC", p.Chars)
				}
			}
			return
		case "failed", "cancelled":
			t.Fatalf("recovered query job landed in %s (%s)", view.State, view.Error)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// corpusFASTA builds a deterministic multi-record FASTA corpus of n
// sequences, each seqLen bases.
func corpusFASTA(n, seqLen int) string {
	var sb strings.Builder
	state := uint64(11)
	for i := 0; i < n; i++ {
		sb.WriteString(">shard")
		sb.WriteByte(byte('0' + i))
		sb.WriteByte('\n')
		for j := 0; j < seqLen; j++ {
			state = state*6364136223846793005 + 1442695040888963407
			sb.WriteByte("ACGT"[state>>62])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// corpusView is the subset of the corpus job view the tests poll.
type corpusView struct {
	ID         string          `json:"id"`
	State      string          `json:"state"`
	ShardCount int             `json:"shard_count"`
	ShardsDone int             `json:"shards_done"`
	Result     json.RawMessage `json:"result"`
	Error      string          `json:"error"`
}

func getCorpus(t *testing.T, addr, id string) corpusView {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/v1/corpus/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET corpus %s: status %d", id, resp.StatusCode)
	}
	var v corpusView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func submitCorpus(t *testing.T, addr, body string) corpusView {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/v1/corpus", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/corpus: status %d: %s", resp.StatusCode, raw)
	}
	var v corpusView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" {
		t.Fatal("corpus submit returned no id")
	}
	return v
}

// waitCorpusDone polls until the corpus job is terminal and returns its
// final view, requiring state "done" with a result.
func waitCorpusDone(t *testing.T, addr, id string) corpusView {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("corpus %s not terminal in time", id)
		}
		v := getCorpus(t, addr, id)
		switch v.State {
		case "done":
			if len(v.Result) == 0 {
				t.Fatal("corpus done without a merged result")
			}
			return v
		case "partial", "failed", "cancelled":
			t.Fatalf("corpus landed in %s (%s)", v.State, v.Error)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestCorpusRestartResume is the journaled-resume proof at the process
// level: a corpus job is SIGKILLed after some shards checkpointed, the
// daemon restarts on the same data dir, and must finish the job by
// replaying completed shards from the journal (visible as
// shards_replayed_total in /v1/metrics) instead of re-mining them — with
// a merged result byte-identical to an uninterrupted run.
func TestCorpusRestartResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real binary")
	}
	bin := filepath.Join(t.TempDir(), "permined")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := t.TempDir()
	args := []string{"-addr", "127.0.0.1:0", "-workers", "1", "-corpus-max-inflight", "1",
		"-data-dir", dataDir, "-retry-backoff", "50ms", "-shard-retry-backoff", "50ms",
		"-drain-timeout", "5s"}

	body := `{"algorithm":"mppm","params":{"gap_min":2,"gap_max":4,"min_support":0.0005,"max_len":6},` +
		`"alphabet":"dna","fasta":` + strconv.Quote(corpusFASTA(6, 30000)) + `}`

	cmd1, addr := startPermined(t, bin, args...)
	sub := submitCorpus(t, addr, body)
	if sub.ShardCount != 6 {
		cmd1.Process.Kill()
		t.Fatalf("shard_count = %d, want 6", sub.ShardCount)
	}

	// Wait for at least one shard checkpoint, then SIGKILL mid-corpus.
	var doneBefore int
	killDeadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(killDeadline) {
			cmd1.Process.Kill()
			t.Fatal("no shard finished before the kill deadline")
		}
		v := getCorpus(t, addr, sub.ID)
		if v.State != "running" {
			cmd1.Process.Kill()
			t.Fatalf("corpus finished too fast to interrupt (state %s); enlarge the shards", v.State)
		}
		if v.ShardsDone >= 1 && v.ShardsDone < v.ShardCount {
			doneBefore = v.ShardsDone
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait()

	cmd2, addr2 := startPermined(t, bin, args...)
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	resumed := waitCorpusDone(t, addr2, sub.ID)

	// The restarted daemon must have replayed every checkpointed shard
	// (at least the ones we saw complete) and re-mined only the rest.
	mresp, err := http.Get("http://" + addr2 + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Corpus struct {
			Shards         map[string]int64 `json:"shards_total"`
			ShardsReplayed int64            `json:"shards_replayed_total"`
		} `json:"corpus"`
	}
	err = json.NewDecoder(mresp.Body).Decode(&metrics)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	replayed := metrics.Corpus.ShardsReplayed
	if replayed < int64(doneBefore) || replayed >= int64(sub.ShardCount) {
		t.Errorf("shards_replayed_total = %d, want in [%d, %d)", replayed, doneBefore, sub.ShardCount)
	}
	if mined := metrics.Corpus.Shards["done"]; mined != int64(sub.ShardCount)-replayed {
		t.Errorf("re-mined %d shards after restart, want %d (replayed %d of %d)",
			mined, int64(sub.ShardCount)-replayed, replayed, sub.ShardCount)
	}

	// An uninterrupted run of the same corpus must merge byte-identically.
	cmd3, addr3 := startPermined(t, bin,
		"-addr", "127.0.0.1:0", "-workers", "1", "-data-dir", t.TempDir(), "-drain-timeout", "5s")
	defer func() {
		cmd3.Process.Signal(syscall.SIGTERM)
		cmd3.Wait()
	}()
	clean := waitCorpusDone(t, addr3, submitCorpus(t, addr3, body).ID)
	if string(resumed.Result) != string(clean.Result) {
		t.Errorf("resumed merge differs from clean run:\nresumed: %.400s\nclean:   %.400s",
			resumed.Result, clean.Result)
	}
}
