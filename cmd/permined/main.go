// Command permined serves the permine miners over HTTP/JSON: asynchronous
// mining jobs with cancellation and progress, an LRU result cache, and a
// metrics endpoint. See internal/server for the API and README.md
// ("Serving") for curl examples.
//
//	permined -addr :8080 -workers 4 -cache 256 -job-timeout 2m
//
// With -data-dir set, jobs are journaled to a checksummed write-ahead log
// and recovered on restart: finished jobs stay queryable, interrupted
// ones are re-executed under -retry-budget/-retry-backoff, and a failing
// disk degrades the store to memory-only (visible on /healthz) instead of
// killing the daemon. See README.md ("Persistence & crash recovery").
//
// POST /v1/corpus mines a multi-FASTA collection as per-sequence shards:
// each shard gets its own deadline (-shard-timeout) and retry budget
// (-shard-retry-budget, jittered -shard-retry-backoff), a shard that
// exhausts its budget degrades the job to "partial" instead of failing
// it, and with -data-dir shard completions are checkpointed so a killed
// corpus job resumes from the incomplete shards only. See README.md
// ("Corpus mining").
//
// With -cluster-role coordinator and -cluster-peers set, corpus shards
// and whole jobs are placed across the peer daemons by consistent hash
// over sequence content (keeping the result cache node-affine), peers are
// health-checked with jittered heartbeats, and work assigned to a node
// that dies is requeued onto survivors through the normal per-shard retry
// budget. See README.md ("Clustering").
//
// The daemon drains gracefully on SIGINT/SIGTERM: in-flight jobs are
// cancelled at the next level boundary and the listener closes once the
// pool is idle (bounded by -drain-timeout); /readyz turns 503 the moment
// the drain starts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"permine"
	"permine/internal/server"
)

// splitPeers parses the -cluster-peers list, tolerating blanks and spaces.
func splitPeers(s string) []string {
	var peers []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, strings.TrimRight(p, "/"))
		}
	}
	return peers
}

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "permined:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("permined", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 2, "concurrent mining workers")
		queueDepth   = fs.Int("queue", 64, "job queue depth (submits beyond it are rejected with 429 + Retry-After)")
		cacheSize    = fs.Int("cache", 128, "result cache size in entries (negative disables)")
		cacheSubsume = fs.Bool("cache-subsumption", true, "serve jobs by filtering cached results mined at other thresholds")
		retain       = fs.Int("retain", 1024, "finished jobs kept queryable")
		jobTimeout   = fs.Duration("job-timeout", 5*time.Minute, "default per-job deadline")
		maxTimeout   = fs.Duration("max-timeout", 0, "ceiling for client-supplied timeouts (0 = job-timeout)")
		syncLen      = fs.Int("max-sync-len", 1<<20, "longest sequence /v1/query accepts synchronously")
		maxBody      = fs.Int64("max-body-bytes", 64<<20, "request body size limit in bytes (oversized bodies get 413)")
		memBudget    = fs.Int64("mem-budget", 0, "default per-job mining memory budget in bytes (0 = unlimited); over-budget jobs end resource_exhausted with partial results")
		memGlobal    = fs.Int64("mem-global", 0, "process-wide mining memory ceiling in bytes (0 = unlimited); nearing it browns out expensive job classes")
		brownoutPct  = fs.Int("brownout-pct", 85, "percent of -mem-global at which brownout shedding starts")
		dataDir      = fs.String("data-dir", "", "journal jobs here and recover them on restart (empty = in-memory only)")
		compactBytes = fs.Int64("compact-bytes", 4<<20, "journal size triggering snapshot compaction")
		retryBudget  = fs.Int("retry-budget", 3, "re-executions allowed for a job interrupted by crashes")
		retryBackoff = fs.Duration("retry-backoff", 500*time.Millisecond, "delay before a recovered job re-runs (doubles per attempt)")
		shardTimeout = fs.Duration("shard-timeout", 2*time.Minute, "per-shard deadline for corpus jobs")
		shardBudget  = fs.Int("shard-retry-budget", 3, "mining attempts allowed per corpus shard")
		shardBackoff = fs.Duration("shard-retry-backoff", 200*time.Millisecond, "base delay before a corpus shard retries (doubles per attempt, jittered)")
		maxInflight  = fs.Int("corpus-max-inflight", 0, "corpus shards mined concurrently per job (0 = 2x workers)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for running jobs")
		clusterRole  = fs.String("cluster-role", "", `cluster mode: "" standalone, "coordinator" places work on peers, "peer" serves forwarded work`)
		clusterPeers = fs.String("cluster-peers", "", "comma-separated peer base URLs the coordinator heartbeats and forwards to")
		clusterSelf  = fs.String("cluster-self", "", "this node's advertised base URL (journaled on local placements)")
		clusterHB    = fs.Duration("cluster-heartbeat", time.Second, "heartbeat probe interval (jittered)")
		clusterSusp  = fs.Int("cluster-suspect-after", 2, "consecutive probe failures before a peer is suspect")
		clusterDead  = fs.Int("cluster-dead-after", 4, "consecutive probe failures before a peer is dead and leaves the ring")
		shardDelay   = fs.Duration("shard-delay", 0, "debug: stretch every local mining run by this sleep")
		traceSpans   = fs.Int("trace-spans", 0, "finished tracing spans kept for /v1/traces (0 = default 4096)")
		traceSample  = fs.Float64("trace-sample", 1, "head-sampling rate for traces in [0,1]; sampled-out requests produce no spans")
		sloTargetMS  = fs.Int("slo-p99-ms", 250, "p99 request-latency objective in ms for the permine_slo_* counters")
		pprofAddr    = fs.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
		logJSON      = fs.Bool("log-json", false, "emit JSON logs instead of text")
		version      = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintf(stdout, "permined %s\n", permine.Version)
		return nil
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	// Config treats 0 as "default" (sample everything); an explicit
	// -trace-sample 0 means drop every trace, which Config spells negative.
	sampleRate := *traceSample
	if sampleRate == 0 {
		sampleRate = -1
	}

	srv := server.New(server.Config{
		Version:             permine.Version,
		Workers:             *workers,
		QueueDepth:          *queueDepth,
		CacheSize:           *cacheSize,
		DisableSubsumption:  !*cacheSubsume,
		Retain:              *retain,
		JobTimeout:          *jobTimeout,
		MaxTimeout:          *maxTimeout,
		MaxSyncSeqLen:       *syncLen,
		MaxBodyBytes:        *maxBody,
		MemBudget:           *memBudget,
		MemGlobal:           *memGlobal,
		BrownoutPct:         *brownoutPct,
		DataDir:             *dataDir,
		CompactBytes:        *compactBytes,
		RetryBudget:         *retryBudget,
		RetryBackoff:        *retryBackoff,
		ShardTimeout:        *shardTimeout,
		ShardRetryBudget:    *shardBudget,
		ShardRetryBackoff:   *shardBackoff,
		CorpusMaxInflight:   *maxInflight,
		TraceSpans:          *traceSpans,
		TraceSample:         sampleRate,
		SLOTargetP99:        time.Duration(*sloTargetMS) * time.Millisecond,
		ClusterRole:         *clusterRole,
		ClusterPeers:        splitPeers(*clusterPeers),
		ClusterSelf:         *clusterSelf,
		ClusterHeartbeat:    *clusterHB,
		ClusterSuspectAfter: *clusterSusp,
		ClusterDeadAfter:    *clusterDead,
		ShardDelay:          *shardDelay,
		Logger:              logger,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	// pprof serves on its own listener so profiling never shares the API
	// port (and can be bound to localhost while the API is public). The
	// handlers are registered on a private mux — importing net/http/pprof
	// touches only http.DefaultServeMux, which the API server never uses.
	if *pprofAddr != "" {
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		pprofSrv := &http.Server{Handler: pprofMux, ReadHeaderTimeout: 10 * time.Second}
		defer pprofSrv.Close()
		logger.Info("pprof listening", "addr", pln.Addr().String())
		go func() {
			if err := pprofSrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("pprof server stopped", "err", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("permined listening", "addr", ln.Addr().String(), "version", permine.Version,
		"workers", *workers, "queue", *queueDepth, "cache", *cacheSize, "data_dir", *dataDir)
	fmt.Fprintf(stdout, "permined %s listening on %s\n", permine.Version, ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	logger.Info("shutting down", "drain_timeout", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// httpSrv.Shutdown closes the listener immediately but then waits for
	// in-flight connections — including SSE streams, which only end once
	// srv.Shutdown closes the event broadcaster. Run them concurrently so
	// streams drain with a final "shutdown" event instead of pinning the
	// whole drain window and being cut off at the deadline.
	httpDone := make(chan error, 1)
	go func() { httpDone <- httpSrv.Shutdown(drainCtx) }()
	shutdownErr := srv.Shutdown(drainCtx)
	if err := <-httpDone; err != nil && shutdownErr == nil {
		shutdownErr = err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) && shutdownErr == nil {
		shutdownErr = err
	}
	logger.Info("permined stopped")
	return shutdownErr
}
