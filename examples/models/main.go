// models compares the three periodic-pattern models the paper discusses
// on one jittered helical-turn signal (§2):
//
//  1. the gap-requirement model (this paper): variable gap [10,11]
//     absorbs the jitter in a single pattern;
//  2. Yang et al.'s asynchronous fixed-period model: jitter fragments
//     the chain into sub-MinRep pieces;
//  3. Han/Mannila-style window counting: needs a width guess and misses
//     boundary-spanning occurrences.
//
// go run ./examples/models
package main

import (
	"fmt"
	"log"
	"strings"

	"permine"
)

func main() {
	// Plant an A-chain whose consecutive distances alternate 11 and 12
	// (gap sizes 10 and 11): one jittered periodic signal, ~36 reps, on
	// a mixed C/G/T background.
	bg := "CGTGCTTGCCGTTGC"
	buf := make([]byte, 420)
	for i := range buf {
		buf[i] = bg[(i*7+3)%len(bg)]
	}
	pos, reps := 2, 0
	for pos < len(buf) {
		buf[pos] = 'A'
		reps++
		if reps%2 == 0 {
			pos += 11
		} else {
			pos += 12
		}
	}
	s, err := permine.NewDNASequence("jittered-helix", string(buf))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subject: %v (%d planted A's, distances alternating 11/12)\n\n", s, reps)

	// --- Model 1: gap requirement [10,11]. The variable gap follows the
	// jittered chain, so long all-A patterns stay frequent.
	gap := permine.Gap{N: 10, M: 11}
	res, err := permine.MPP(s, permine.Params{Gap: gap, MinSupport: 0.002, MaxLen: 8})
	if err != nil {
		log.Fatal(err)
	}
	longestA := 0
	for _, p := range res.Patterns {
		if strings.Count(p.Chars, "A") == len(p.Chars) && p.Len() > longestA {
			longestA = p.Len()
		}
	}
	sup6, err := permine.Support(s, strings.Repeat("A", 6), gap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gap model [10,11]:    all-A pattern frequent up to length %d (sup(A^6)=%d — every planted 6-chain)\n",
		longestA, sup6)

	// --- Model 2: asynchronous fixed period. The jitter breaks every
	// on-period run after at most 2 repetitions.
	chains, err := permine.MineAsync(s, permine.AsyncParams{
		MinPeriod: 11, MaxPeriod: 12, MinRep: 3, MaxDis: 50,
	})
	if err != nil {
		log.Fatal(err)
	}
	bestAsync := "none: no (symbol, period) sustains 3 on-period reps"
	for _, c := range chains {
		if c.Symbol == 'A' {
			bestAsync = c.String()
			break
		}
	}
	fmt.Printf("async fixed period:   %s\n", bestAsync)

	// --- Model 3: fixed windows of 40. The pattern occurs everywhere,
	// but window counts depend on the arbitrary width and alignment.
	win, err := permine.MineWindowed(s, permine.WindowParams{
		Gap: gap, Width: 40, MinWindows: 1, Mode: permine.FixedWindows, StartLen: 3, MaxLen: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	var aaa *permine.WindowPattern
	for i := range win.Patterns {
		if win.Patterns[i].Chars == "AAA" {
			aaa = &win.Patterns[i]
		}
	}
	if aaa != nil {
		fmt.Printf("fixed windows (w=40): AAA in %d/%d windows — boundary-straddling chains uncounted\n",
			aaa.Windows, win.NWindows)
	} else {
		fmt.Printf("fixed windows (w=40): AAA never fits a window\n")
	}

	fmt.Println("\nThe gap model is the only one that reads the jittered helix as a single long pattern (§2).")
}
