// protein mines periodic patterns from a protein sequence on the
// 20-letter amino-acid alphabet — the paper's other target domain (§1
// cites the porcine ribonuclease inhibitor's leucine-rich 28/29-residue
// repeat, whose α-helices put hydrophobic residues ~3.5 positions apart
// and leucines ~14 apart).
//
//	go run ./examples/protein
package main

import (
	"fmt"
	"log"
	"strings"

	"permine"
)

func main() {
	// A synthetic protein with a planted leucine-rich repeat region of
	// period ~14 (see DESIGN.md §5 for the substitution rationale).
	s, err := permine.GenerateProteinRepeat(2000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subject: %v (alphabet %s, %d symbols)\n", s, s.Alphabet().Name(), s.Alphabet().Size())

	// Gap [12,15] targets residues about one repeat period apart, the
	// protein analogue of the DNA helix-turn gap.
	gap := permine.Gap{N: 12, M: 15}

	// 0.005%: far above the 20-letter random-match floor (0.05^l), so
	// only the planted repeat's phase-locked chains survive.
	res, err := permine.MPPm(s, permine.Params{
		Gap:        gap,
		MinSupport: 5e-5,
		EmOrder:    4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Summary())

	// Periodic leucine chains are the repeat's signature.
	fmt.Println("\nlongest frequent patterns:")
	for _, p := range res.ByLength(res.Longest()) {
		fmt.Printf("  %-12s sup=%-8d ratio=%.3g%%\n", p.Chars, p.Support, p.Ratio*100)
	}
	lChain := strings.Repeat("L", 3)
	if p, ok := res.Pattern(lChain); ok {
		fmt.Printf("\nleucine chain %s (one per repeat period): sup=%d ratio=%.3g%%\n",
			p.Chars, p.Support, p.Ratio*100)
	}

	// Contrast with a repeat-free random protein: the periodic patterns
	// disappear.
	bg, err := permine.GenerateUniform(permine.Protein, "random-protein", 2000, 7)
	if err != nil {
		log.Fatal(err)
	}
	bgRes, err := permine.MPPm(bg, permine.Params{Gap: gap, MinSupport: 5e-5, EmOrder: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncontrol (uniform protein): %d frequent patterns, longest %d (repeat region: %d, longest %d)\n",
		len(bgRes.Patterns), bgRes.Longest(), len(res.Patterns), res.Longest())
}
