// events mines periodic patterns from a non-biological sequence — a
// synthetic system event log — showing (1) custom alphabets beyond DNA
// and proteins, and (2) the paper's §2 contrast between the
// gap-requirement model and the older window-based models: the variable
// gap absorbs timing jitter, and patterns spanning window boundaries stay
// visible.
//
//	go run ./examples/events
//
// The log's alphabet: h=heartbeat, r=request, w=write, e=error,
// c=compact, i=idle. A maintenance cycle "c ... w ... e" recurs with
// 6-8 events between its stages (jitter the fixed-period models cannot
// express).
package main

import (
	"fmt"
	"log"

	"permine"
)

func main() {
	alpha, err := permine.NewAlphabet("events", "hrweci")
	if err != nil {
		log.Fatal(err)
	}

	// Background traffic with a planted jittered maintenance cycle.
	logSeq := buildEventLog(alpha, 4000)
	fmt.Printf("subject: %v\n", logSeq)

	// Gap [6,8]: stages of the cycle are 7±1 events apart.
	gap := permine.Gap{N: 6, M: 8}
	res, err := permine.MPPm(logSeq, permine.Params{
		Gap:        gap,
		MinSupport: 0.0002,
		EmOrder:    4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Summary())

	// The maintenance signature should surface with high enrichment.
	annotated, err := permine.Annotate(res, logSeq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmost enriched patterns (observed/expected under IID):")
	for i, a := range annotated {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-8s sup=%-8d ratio=%.4g%%  enrichment=%.1fx\n",
			a.Chars, a.Support, a.Ratio*100, a.Enrichment)
	}
	if p, ok := res.Pattern("cwe"); ok {
		fmt.Printf("\nmaintenance signature c→w→e found: sup=%d (%s)\n",
			p.Support, p.Expand(gap.N, gap.M))
	}

	// Contrast with the fixed-window model (§2): cycles that straddle a
	// window boundary are invisible there.
	win, err := permine.MineWindowed(logSeq, permine.WindowParams{
		Gap: gap, Width: 18, MinWindows: 40, Mode: permine.FixedWindows, StartLen: 3, MaxLen: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	var winCWE *permine.WindowPattern
	for i := range win.Patterns {
		if win.Patterns[i].Chars == "cwe" {
			winCWE = &win.Patterns[i]
		}
	}
	fmt.Printf("\nfixed-window model (w=18): %d frequent length-3 patterns", len(win.Patterns))
	if winCWE == nil {
		fmt.Println("; the c→w→e cycle is NOT among them — it keeps straddling window boundaries (the paper's §2 critique)")
	} else {
		fmt.Printf("; c→w→e seen in %d/%d windows\n", winCWE.Windows, win.NWindows)
	}
}

// buildEventLog makes a deterministic log: idle/request/heartbeat noise
// with a c..w..e maintenance cycle every ~40 events, stages 7±1 apart.
func buildEventLog(alpha *permine.Alphabet, n int) *permine.Sequence {
	buf := make([]byte, n)
	noise := []byte("hrrihir") // weighted background
	state := uint64(0x9E3779B97F4A7C15)
	next := func(mod int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(mod))
	}
	for i := range buf {
		buf[i] = noise[next(len(noise))]
	}
	for start := 5; start+16 < n; start += 40 + next(5) {
		c := start
		w := c + 7 + next(3) - 1 // 6..8 events later
		e := w + 7 + next(3) - 1
		buf[c], buf[w], buf[e] = 'c', 'w', 'e'
	}
	s, err := permine.NewSequence(alpha, "event-log", string(buf))
	if err != nil {
		log.Fatal(err)
	}
	return s
}
