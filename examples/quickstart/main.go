// Quickstart: mine periodic patterns with a gap requirement from a small
// DNA sequence using the public permine API.
//
//	go run ./examples/quickstart
//
// It walks the paper's model end to end: build a sequence, inspect the
// combinatorics (Nl, l1/l2), mine with MPPm, and verify one pattern's
// support by hand.
package main

import (
	"fmt"
	"log"

	"permine"
)

func main() {
	// A genome-like subject sequence; swap in your own data with
	// permine.NewDNASequence(name, "ACGT...") or permine.ReadFASTA.
	s, err := permine.GenerateGenomeLike(1000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subject: %v\n", s)

	// The gap requirement [9,12] targets characters one DNA helix turn
	// (~10-13 bp) apart, as in the paper's motivation.
	gap := permine.Gap{N: 9, M: 12}

	// Some model arithmetic before mining: how many ways can a
	// length-10 pattern be laid onto this sequence?
	n10, err := permine.CountOffsets(s.Len(), 10, gap)
	if err != nil {
		log.Fatal(err)
	}
	l1, l2 := permine.LengthBounds(s.Len(), gap)
	fmt.Printf("N10 = %v offset sequences; pattern lengths: l1=%d (full span), l2=%d (min span)\n", n10, l1, l2)

	// Mine with MPPm: the support threshold is a ratio, so 0.00003 is
	// the paper's 0.003%. MPPm picks the longest-pattern estimate n
	// automatically from the e_m bound.
	res, err := permine.MPPm(s, permine.Params{
		Gap:        gap,
		MinSupport: 0.00003,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Summary())

	// Show the longest patterns: these are chains of bases recurring
	// one helix turn apart.
	longest := res.ByLength(res.Longest())
	fmt.Printf("\n%d frequent pattern(s) of maximal length %d:\n", len(longest), res.Longest())
	for _, p := range longest {
		fmt.Printf("  %s   i.e. %s\n", p.Chars, p.Expand(gap.N, gap.M))
	}

	// Double-check one mined support through the standalone query API.
	p := longest[0]
	sup, err := permine.Support(s, p.Chars, gap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nverify: Support(%s) = %d (mined %d, ratio %.4g%%)\n",
		p.Chars, sup, p.Support, p.Ratio*100)
	if sup != p.Support {
		log.Fatal("support mismatch — this should never happen")
	}
}
