// adaptive demonstrates the three ways of choosing the longest-pattern
// estimate n that the paper discusses in Section 6, on the same input:
//
//  1. MPP worst case (n = l1): no estimate, weakest pruning;
//  2. MPPm: n derived from the e_m bound;
//  3. the adaptive refinement the paper sketches: start small, grow n to
//     the longest pattern found, repeat — implemented as
//     permine.Adaptive.
//
// go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"time"

	"permine"
)

func main() {
	s, err := permine.GenerateGenomeLike(1000, 20050711)
	if err != nil {
		log.Fatal(err)
	}
	base := permine.Params{
		Gap:        permine.Gap{N: 9, M: 12},
		MinSupport: 0.00003, // the paper's 0.003%
	}
	fmt.Printf("subject: %v\n\n", s)

	type runner struct {
		name string
		run  func() (*permine.Result, error)
	}
	runs := []runner{
		{"MPP worst case (n=l1)", func() (*permine.Result, error) { return permine.MPP(s, base) }},
		{"MPPm (auto n via e_m)", func() (*permine.Result, error) {
			p := base
			p.EmOrder = 8
			return permine.MPPm(s, p)
		}},
		{"Adaptive (start n=10)", func() (*permine.Result, error) {
			p := base
			p.MaxLen = 10
			return permine.Adaptive(s, p)
		}},
	}

	var reference *permine.Result
	for _, r := range runs {
		start := time.Now()
		res, err := r.run()
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		var cands int64
		for _, lv := range res.Levels {
			cands += lv.Candidates
		}
		fmt.Printf("%-24s n=%-3d patterns=%-6d longest=%-3d candidates=%-8d time=%v\n",
			r.name, res.N, len(res.Patterns), res.Longest(), cands, elapsed.Round(time.Millisecond))
		if res.Rounds != nil {
			fmt.Printf("%-24s rounds: n = %v\n", "", res.Rounds)
		}
		if reference == nil {
			reference = res
		} else if len(res.Patterns) != len(reference.Patterns) {
			log.Fatalf("%s found %d patterns, reference %d — they must agree",
				r.name, len(res.Patterns), len(reference.Patterns))
		}
	}
	fmt.Println("\nAll three find the same frequent patterns; they differ in how much candidate work the n estimate prunes.")
}
