// dnacase reproduces the spirit of the paper's Section 7 case study on a
// laptop-sized budget: segment genomes into fragments, mine each fragment
// with gap [10,12] and ρs = 0.006%, and census the frequent length-8
// patterns by C/G content.
//
//	go run ./examples/dnacase
//
// Expected shape (the paper's findings):
//   - in AT-rich bacterial-like fragments nearly all 256 AT-only length-8
//     patterns are frequent, while patterns with more than one C or G are
//     rare;
//   - eukaryote-like fragments keep the AT signal but add G-rich
//     patterns — including the long all-G pattern the paper highlights
//     for H. sapiens.
package main

import (
	"fmt"
	"log"
	"strings"

	"permine"
)

const (
	genomeLen = 120_000
	fragLen   = 60_000
	rho       = 0.006 / 100 // the paper's 0.006%
)

func main() {
	gap := permine.Gap{N: 10, M: 12}

	genomes := []struct {
		name string
		gen  func(int, uint64) (*permine.Sequence, error)
		seed uint64
	}{
		{"H.influenzae-like", permine.GenerateBacterialLike, 1},
		{"M.genitalium-like", permine.GenerateBacterialLike, 2},
		{"H.sapiens-like", permine.GenerateEukaryoteLike, 3},
	}

	for _, g := range genomes {
		genome, err := g.gen(genomeLen, g.seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (%d bp, %d bp fragments)\n", g.name, genome.Len(), fragLen)
		for fi, frag := range genome.Fragments(fragLen) {
			res, err := permine.MPPm(frag, permine.Params{
				Gap:        gap,
				MinSupport: rho,
				EmOrder:    6,
			})
			if err != nil {
				log.Fatal(err)
			}
			var atOnly, oneCG, multiCG int
			for _, p := range res.ByLength(8) {
				switch cg := strings.Count(p.Chars, "C") + strings.Count(p.Chars, "G"); {
				case cg == 0:
					atOnly++
				case cg == 1:
					oneCG++
				default:
					multiCG++
				}
			}
			fmt.Printf("  fragment %d: length-8 frequent: AT-only %d/256, one-CG %d/2048, multi-CG %d/63232; longest %d\n",
				fi, atOnly, oneCG, multiCG, res.Longest())
			// The paper's H. sapiens highlight: a frequent pattern of
			// 16-17 consecutive G's (one per helix turn).
			for l := 17; l >= 16; l-- {
				if p, ok := res.Pattern(strings.Repeat("G", l)); ok {
					fmt.Printf("    ! all-G pattern of length %d is frequent (sup=%d) — the paper's §7 H. sapiens finding\n",
						l, p.Support)
					break
				}
			}
		}
	}
	fmt.Println("\nCompare with the paper: AT-only patterns dominate bacteria; eukaryotes add G-rich periodicity.")
}
