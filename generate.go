package permine

import (
	"permine/internal/gen"
	"permine/internal/tandem"
)

// The generators below produce the deterministic synthetic sequences the
// repository uses in place of the paper's NCBI data (see DESIGN.md §5).
// All are reproducible bit-for-bit from (length, seed).

// GenerateUniform returns an IID-uniform sequence over the alphabet.
func GenerateUniform(alpha *Alphabet, name string, length int, seed uint64) (*Sequence, error) {
	return gen.Uniform(alpha, name, length, seed)
}

// GenerateWeighted returns an IID sequence with per-symbol weights in
// alphabet code order (normalised internally).
func GenerateWeighted(alpha *Alphabet, name string, length int, weights []float64, seed uint64) (*Sequence, error) {
	return gen.Weighted(alpha, name, length, weights, seed)
}

// GenerateMarkov returns a sequence from a first-order Markov chain with
// the given row-stochastic transition matrix in code order.
func GenerateMarkov(alpha *Alphabet, name string, length int, trans [][]float64, seed uint64) (*Sequence, error) {
	return gen.Markov(alpha, name, length, trans, seed)
}

// GenerateGenomeLike models the paper's human DNA fragment AX829174: a
// realistic base composition plus a phased helical-turn (period 11)
// region. It is the default subject of the benchmark harness.
func GenerateGenomeLike(length int, seed uint64) (*Sequence, error) {
	return gen.GenomeLike(length, seed)
}

// GenerateBacterialLike models the paper's AT-rich bacterial genomes
// (§7 case study).
func GenerateBacterialLike(length int, seed uint64) (*Sequence, error) {
	return gen.BacterialLike(length, seed)
}

// GenerateEukaryoteLike models the paper's higher-eukaryote sequences:
// weaker AT skew, a G-rich patch and a poly-G tract (§7 case study).
func GenerateEukaryoteLike(length int, seed uint64) (*Sequence, error) {
	return gen.EukaryoteLike(length, seed)
}

// GenerateProteinRepeat models the leucine-rich alternating repeat of the
// paper's porcine ribonuclease inhibitor example on the 20-letter
// alphabet.
func GenerateProteinRepeat(length int, seed uint64) (*Sequence, error) {
	return gen.ProteinRepeat(length, seed)
}

// FindTandemRepeats reports the maximal exact tandem runs of s with
// period up to maxPeriod and at least minCopies complete copies — the
// classic periodic-pattern class the paper's introduction surveys (§1),
// provided as a companion analysis to the gap-requirement miner.
func FindTandemRepeats(s *Sequence, maxPeriod, minCopies int) ([]TandemRepeat, error) {
	return tandem.Find(s, maxPeriod, minCopies)
}

// LongestTandemRepeats ranks repeats by total length (ties by position),
// truncated to limit entries.
func LongestTandemRepeats(reps []TandemRepeat, limit int) []TandemRepeat {
	return tandem.Longest(reps, limit)
}

// TandemRepeat is one maximal tandem run (unit, copies, trailing part).
type TandemRepeat = tandem.Repeat
