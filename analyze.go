package permine

import (
	"fmt"
	"math"
	"sort"

	"permine/internal/pattern"
	"permine/internal/seq"
)

// ParsedPattern is a pattern in the paper's explicit notation, possibly
// with a different gap requirement between each character pair
// (e.g. "A..Tg(9,12)C"). Build one with ParsePattern.
type ParsedPattern = pattern.Pattern

// Occurrence is one matching offset sequence, as 0-based positions.
type Occurrence = pattern.Occurrence

// ParsePattern parses the paper's pattern notation: shorthand characters
// ("ATC", pairs separated by defaultGap), wild-card dots ("A..T.C", exact
// gaps) and explicit groups ("Ag(8,10)Tg(9)C"), freely mixed.
func ParsePattern(text string, defaultGap Gap) (*ParsedPattern, error) {
	return pattern.Parse(text, defaultGap)
}

// SupportOf computes sup(P) for a parsed (possibly heterogeneous-gap)
// pattern in O(|P|·L).
func SupportOf(s *Sequence, p *ParsedPattern) (int64, error) {
	return pattern.Support(s, p)
}

// Occurrences lists up to limit matching offset sequences of the parsed
// pattern, in position order (limit <= 0 lists all; supports can be
// astronomically large, prefer a limit).
func Occurrences(s *Sequence, p *ParsedPattern, limit int) ([]Occurrence, error) {
	return pattern.Occurrences(s, p, limit)
}

// AnnotatedPattern augments a mined pattern with its significance under
// the IID composition null model: the expected support ratio is the
// product of the per-character frequencies (each offset position is one
// independent draw), and Enrichment is observed/expected. This echoes the
// base-pair oscillation statistic of the paper's introduction: values
// well above 1 flag periodic structure beyond what composition explains.
type AnnotatedPattern struct {
	Pattern
	// Expected is the support ratio an IID sequence with the same
	// composition would give the pattern in expectation.
	Expected float64
	// Enrichment is Ratio / Expected (+Inf if Expected is zero).
	Enrichment float64
}

// Annotate computes significance annotations for every mined pattern,
// sorted by decreasing enrichment. s must be the sequence the result was
// mined from.
func Annotate(res *Result, s *Sequence) ([]AnnotatedPattern, error) {
	if res == nil {
		return nil, fmt.Errorf("permine: nil result")
	}
	if s.Len() != res.SeqLen {
		return nil, fmt.Errorf("permine: sequence length %d does not match the mined result's %d", s.Len(), res.SeqLen)
	}
	comp := seq.Compose(s)
	out := make([]AnnotatedPattern, 0, len(res.Patterns))
	for _, p := range res.Patterns {
		expected := 1.0
		for i := 0; i < len(p.Chars); i++ {
			expected *= comp.Freq(p.Chars[i])
		}
		a := AnnotatedPattern{Pattern: p, Expected: expected}
		if expected > 0 {
			a.Enrichment = p.Ratio / expected
		} else if p.Ratio > 0 {
			a.Enrichment = math.Inf(1)
		}
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Enrichment != out[j].Enrichment {
			return out[i].Enrichment > out[j].Enrichment
		}
		return out[i].Chars < out[j].Chars
	})
	return out, nil
}

// StrandPattern is a mined pattern tagged with the strand(s) it was found
// on, for double-stranded DNA mining.
type StrandPattern struct {
	Pattern
	// Forward and Reverse report on which strand(s) the pattern is
	// frequent. For a pattern frequent on both, Pattern carries the
	// forward-strand support.
	Forward bool
	Reverse bool
	// ReverseSupport is the support on the reverse complement strand
	// (0 if not frequent there).
	ReverseSupport int64
}

// MineBothStrands mines a DNA sequence and its reverse complement with
// the given algorithm (AlgoMPP, AlgoMPPm or AlgoAdaptive) and merges the
// results: biological periodicities can live on either strand. Patterns
// are keyed by their forward-strand reading; a pattern found only on the
// reverse strand is reported as its own characters with Reverse set.
func MineBothStrands(s *Sequence, algo Algorithm, p Params) ([]StrandPattern, error) {
	rc, err := s.ReverseComplement()
	if err != nil {
		return nil, err
	}
	runner := func(sub *Sequence) (*Result, error) {
		switch algo {
		case AlgoMPP:
			return MPP(sub, p)
		case AlgoMPPm:
			return MPPm(sub, p)
		case AlgoAdaptive:
			return Adaptive(sub, p)
		default:
			return nil, fmt.Errorf("permine: MineBothStrands does not support %v", algo)
		}
	}
	fwd, err := runner(s)
	if err != nil {
		return nil, err
	}
	rev, err := runner(rc)
	if err != nil {
		return nil, err
	}
	merged := make(map[string]*StrandPattern, len(fwd.Patterns))
	for _, pat := range fwd.Patterns {
		merged[pat.Chars] = &StrandPattern{Pattern: pat, Forward: true}
	}
	for _, pat := range rev.Patterns {
		if sp, ok := merged[pat.Chars]; ok {
			sp.Reverse = true
			sp.ReverseSupport = pat.Support
			continue
		}
		merged[pat.Chars] = &StrandPattern{Pattern: pat, Reverse: true, ReverseSupport: pat.Support}
	}
	out := make([]StrandPattern, 0, len(merged))
	for _, sp := range merged {
		out = append(out, *sp)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Chars) != len(out[j].Chars) {
			return len(out[i].Chars) < len(out[j].Chars)
		}
		return out[i].Chars < out[j].Chars
	})
	return out, nil
}
