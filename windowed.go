package permine

import (
	"permine/internal/async"
	"permine/internal/windowed"
)

// The window-based frequent-pattern model the paper contrasts itself
// against in Section 2 (Mannila et al.'s sliding windows, Han et al.'s
// non-overlapping windows) is provided for comparison studies: under it
// the plain Apriori property holds, but patterns spanning window
// boundaries are invisible and the width must be guessed in advance —
// both limitations the gap-requirement model removes.

// WindowMode selects the windowing scheme for MineWindowed.
type WindowMode = windowed.Mode

// Window modes.
const (
	// SlidingWindows uses all L-w+1 overlapping windows.
	SlidingWindows = windowed.Sliding
	// FixedWindows uses consecutive non-overlapping windows.
	FixedWindows = windowed.Fixed
)

// WindowParams configures MineWindowed.
type WindowParams = windowed.Params

// WindowPattern is a pattern frequent under the window model, with the
// number of windows containing it.
type WindowPattern = windowed.Pattern

// WindowResult is the outcome of a window-model mining run.
type WindowResult = windowed.Result

// MineWindowed mines s under the window-count frequency model: a pattern
// (with the usual gap requirement between characters) is frequent when at
// least MinWindows windows of width Width contain a match.
func MineWindowed(s *Sequence, p WindowParams) (*WindowResult, error) {
	return windowed.Mine(s, p)
}

// Asynchronous periodic patterns (Yang et al., the paper's §2 third
// related model): fixed-period repetition chains that tolerate noise
// between valid segments.

// AsyncParams configures MineAsync.
type AsyncParams = async.Params

// AsyncChain is one (symbol, period) repetition chain.
type AsyncChain = async.Chain

// AsyncSegment is one maximal run of on-period repetitions.
type AsyncSegment = async.Segment

// MineAsync finds, per symbol and period, the longest valid repetition
// chain under Yang et al.'s (min_rep, max_dis) model — provided for
// comparison with the gap-requirement miner, whose variable gap absorbs
// within-chain period jitter that this fixed-period model fragments.
func MineAsync(s *Sequence, p AsyncParams) ([]AsyncChain, error) {
	return async.Mine(s, p)
}
